(** The unified analysis pipeline.

    Every consumer of this repository runs the same sequence: take a
    projective loop nest, solve the bounded tiling LP (5.1), derive the
    lower bound [M^k_hat] and the rectangular tile, then optionally
    validate by cache simulation. This module is that sequence as one
    typed function: a {!request} in, a {!Report.t} out, with the
    expensive exact-LP stages memoized ({!Memo}) and independent sweep
    points parallelized over domains ({!Pool}). *)

type schedule_choice =
  | Optimal  (** shared-cache communication-optimal tile, {!Tiling.optimal_shared} *)
  | Classic  (** clamped large-bounds cube, {!Schedules.classic_tile} *)
  | Untiled
  | Permuted of int array
  | Fixed of int array  (** a caller-supplied tile *)

type sim_request = {
  schedule : schedule_choice;
  policy : Policy.t;
  line_words : int;
}

val sim : ?policy:Policy.t -> ?line_words:int -> schedule_choice -> sim_request
(** Defaults: [Lru], 1-word lines. *)

type request = {
  rspec : Spec.t;
  rm : int;  (** fast-memory size in words *)
  rsims : sim_request list;  (** simulations to run; may be empty *)
  rshared : bool;  (** also compute the shared-cache tile *)
}

val request : ?sims:sim_request list -> ?shared:bool -> Spec.t -> m:int -> request
(** Defaults: no simulations, [shared = false]. The shared tile is
    computed anyway when some simulation asks for [Optimal]. *)

val run_checked :
  ?deadline:float -> request -> (Report.t, Engine_error.t) result
(** Execute one request without raising. Analysis (LP, bound, tile) is
    served from the memo cache when an equivalent [(spec, beta, m)] has
    been analyzed before; simulations always execute.

    Up-front validation: [Error Cache_too_small] when [m] is below
    [max 2 (num_arrays)] (the bound needs 2 words, the tile one word per
    array), [Error Kernel_too_large] when a simulation is requested and
    the exact iteration count exceeds {!sim_iteration_limit}. Stage
    failures ([Invalid_argument]/[Failure] from the analysis stack) come
    back as [Error Invalid_spec]/[Error Internal]; asynchronous
    exceptions still propagate.

    [deadline] is an absolute [Unix.gettimeofday] instant. It is tested
    cooperatively at stage boundaries (before the analysis, the shared
    tile and each simulation), so an expired request returns
    [Error (Deadline_exceeded _)] having overshot by at most one stage —
    there is no preemption. A deadline already in the past fails before
    any work. *)

val run : request -> Report.t
(** Thin raising wrapper over {!run_checked} (no deadline), kept for
    straight-line callers: [Error e] becomes [raise (Engine_error.Error e)].
    New code should prefer {!run_checked}. *)

val run_staged :
  ?deadline:float -> request -> (Report.t, Engine_error.t) result Pool.staged
(** {!run_checked} split at the analysis-vs-simulate boundary for the
    work-stealing pool. The first stage runs the validation and the
    memoized analysis; a request with no simulations (or that fails
    early) finishes there as [Done]. A simulation-carrying request
    returns [More] whose thunk runs the shared-tile search and every
    simulation — on the pool that tail re-queues at [Simulation] class,
    so it never blocks analytic work behind it. Forcing the staged value
    is exactly [run_checked]: same results, same error mapping, same
    memo effects. *)

val classify : request -> Pool.priority
(** The admission classification: [Analytic] iff the request carries no
    simulations (plan/LP lookups are sub-millisecond; simulations are
    seconds). Used by {!sweep_checked} and the serve daemon's per-class
    queues. *)

val sweep : ?jobs:int -> request list -> Report.t list
(** Run independent requests in parallel with {!Pool.map_list}. Result
    order matches input order and every report is byte-identical (under
    {!Report.pp}) to what the sequential path produces.
    @raise Engine_error.Error on the first failing request (via {!run}). *)

val sweep_checked :
  ?jobs:int -> ?coarse:bool -> ?deadline:float -> request list ->
  (Report.t, Engine_error.t) result list
(** {!run_staged} over the pool ({!Pool.map_staged_list} with
    {!classify}): one [result] per request, input order, failures
    isolated per element (one bad request never poisons the batch).
    Analytic requests run ahead of simulation tails however the input
    interleaves them; the results are byte-identical to the sequential
    path regardless. [~coarse:true] uses the pre-split class-blind
    scheduler (the bench's ablation baseline). The one [deadline]
    applies to every request; callers needing per-request deadlines map
    {!run_checked} over {!Pool} directly. *)

val sim_iteration_limit : int
(** Iteration-count ceiling above which simulation requests are refused
    ([2 * 10^7] — the cache simulator touches every iteration). *)

(** {1 The tiling-plan fast path}

    A compiled {!Tiling_plan.t} answers every [(beta, m)] request for
    its kernel {e shape} with pure rational arithmetic — zero simplex
    solves. The pipeline keeps a shape-keyed plan cache (Obs counters
    [memo.plan.hits]/[memo.plan.misses]) in front of the
    [(spec, beta)]-keyed LP memo; both the plan path and the LP fallback
    return the lexicographically maximal optimum
    ({!Tiling.solve_lp_lexmax}), so reports are byte-identical whichever
    path served them. Compilation of one shape is timed under
    [plan.compile]. *)

type plan_mode =
  | Plan_off  (** never consult or build plans; every request solves the LP *)
  | Plan_inline
      (** the default: a plan miss answers via the LP, then compiles and
          installs the shape's plan before returning, so every later
          size of that shape is plan-served *)
  | Plan_deferred
      (** a plan miss answers via the LP and only {e queues} the shape;
          {!compile_pending} builds queued plans later (serve drains the
          queue on the Pool at batch boundaries, keeping compilation out
          of request latency) *)

val set_plan_mode : plan_mode -> unit
val plan_mode : unit -> plan_mode

val plan_of : Spec.t -> (Tiling_plan.t, Engine_error.t) result
(** The shape's plan, compiling and installing it on first use
    regardless of mode. [Error (Shape_too_large _)] when the shape
    exceeds the enumeration budget (the failure is negative-cached:
    analysis requests for the shape keep working on the LP path). *)

val install_plan : Tiling_plan.t -> unit
(** Seed the plan cache (e.g. from a [--plans] file at serve startup).
    First writer wins; installing never evicts. *)

val compile_pending : ?jobs:int -> unit -> int
(** Compile every shape queued under [Plan_deferred] in parallel on the
    {!Pool} and install the results; returns how many shapes were
    processed. Safe to call concurrently with request traffic. *)

val pending_count : unit -> int
(** Queued-but-uncompiled shapes (diagnostics). *)

(** {1 Memoized stages, usable a la carte} *)

val solve_lp : Spec.t -> beta:Rat.t array -> Tiling.lp_solution
(** The canonical (lex-max) optimum for this [(spec, beta)]: plan-served
    when the shape's plan is installed, LP otherwise (per
    {!plan_mode}). *)

val lower_bound : Spec.t -> m:int -> Lower_bound.bound
val tile : Spec.t -> m:int -> int array
(** Integer tile under the paper's per-array-M model (memoized). *)

val tile_shared : Spec.t -> m:int -> int array
(** Shared-cache tile (memoized — the search is the most expensive
    non-LP stage). *)

val schedule_of : Spec.t -> m:int -> schedule_choice -> Schedules.t
val simulate : Spec.t -> m:int -> sim_request -> Report.sim

(** {1 Distributed-memory partitioning}

    The Section-7 scenario class: split the iteration space over [p]
    processors with [m_local] words of fast memory each. Results are
    memoized per canonical [(spec, p, m_local, net)] key
    ([memo.partition.*] counters); each solve is timed under
    [partition.solve] and feeds the [partition.grids_enumerated] /
    [partition.pruned] counters. *)

val partition_checked :
  ?deadline:float ->
  ?budget:int ->
  Spec.t ->
  p:int ->
  m_local:int ->
  net:Partition_solve.network ->
  (Partition_solve.solution, Engine_error.t) result
(** Optimal processor grid + per-processor tile via
    {!Partition_solve.solve}, without raising. Up-front validation:
    [Error Invalid_request] for [p < 1], [Error Cache_too_small] when
    [m_local] cannot hold one word per array, and
    [Error Network_model_invalid] for negative [alpha]/[beta].
    [Error (Unfactorable_p _)] when [p] has no grid factorization within
    the loop bounds, [Error (Shape_too_large _)] when grid enumeration
    exceeds [budget] ({!Partition.grids}). [deadline] as in
    {!run_checked}. *)

type partition_group = {
  pg_block : int array;  (** the group's per-processor block shape *)
  pg_procs : int;  (** processors owning a block of this shape *)
  pg_words : int;  (** simulated distinct words for this block shape *)
}

type partition_validation = {
  pv_groups : partition_group list;
  pv_max_words : Bigint.t;  (** largest simulated per-processor volume *)
  pv_matches : bool;
      (** [pv_max_words] equals the solution's [gather_words] exactly *)
}

val partition_validate :
  ?jobs:int ->
  Spec.t ->
  Partition_solve.solution ->
  (partition_validation, Engine_error.t) result
(** Execute the P-processor claim on the {!Pool}: one domain per
    distinct block-shape group ({!Comm_model.block_groups} — congruent
    blocks share one simulation), counting the distinct words each
    block's sub-nest touches ({!Comm_model.simulated_block}). The
    validation passes ([pv_matches]) iff the largest simulated volume
    equals the modeled gather footprint {e exactly}.
    [Error Kernel_too_large] when any block exceeds
    {!sim_iteration_limit}. *)

(** {1 Multi-level hierarchies} *)

type hierarchy_report = {
  hspec : Spec.t;
  hcapacities : int array;
  htiles : int array list;  (** innermost first, from {!Tiling.nested} *)
  hresult : Executor.hierarchy_result;
}

val hierarchy : ?policy:Policy.t -> Spec.t -> capacities:int array -> hierarchy_report
(** Nested tiling sized for each level, executed against the simulated
    hierarchy. Capacities fastest-first, strictly increasing. *)

(** {1 Cache introspection} *)

val cache_stats : unit -> int * int
(** Total (hits, misses) across the engine's memo tables. *)

val reset_caches : unit -> unit

(** {1 Cache persistence}

    The durable memo tables — LP solutions, warm-start simplex bases,
    shared tiles, nested tilings and compiled plans — serialize to a
    versioned JSON snapshot so a restarted daemon or a fresh replica
    boots warm ({!Cache_store} handles the file I/O; the serve CLI's
    [--cache-dir] wires both ends). Rationals travel as exact strings
    and entries in sorted key order, so
    [snapshot -> restore -> snapshot] is byte-identical. *)

val cache_snapshot : unit -> string
(** The current cache contents as one versioned JSON document
    ([{"v":1, "lp":[...], "basis":[...], "shared":[...], "nested":[...],
    "plans":[...]}]). *)

val cache_restore : string -> (int * int, string) result
(** Load a snapshot into the (typically empty) caches:
    [Ok (loaded, rejected)] on success, where [rejected] counts
    malformed entries that were skipped — corruption is tolerated
    per-entry (a damaged snapshot means a colder boot, never a dead
    process); existing entries are never overwritten. [Error _] only
    for an unparseable document or a version mismatch. *)
