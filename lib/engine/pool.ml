let c_maps = Obs.counter "pool.maps"
let c_tasks = Obs.counter "pool.tasks"
let c_domains = Obs.counter "pool.domains_spawned"
let c_max_tasks = Obs.counter "pool.max_tasks_per_domain"
let c_steals = Obs.counter "pool.steals"
let c_steal_fails = Obs.counter "pool.steal_fails"
let t_wall = Obs.timer "pool.map_wall"
let t_busy = Obs.timer "pool.worker_busy"
let t_idle = Obs.timer "pool.worker_idle"

(* Submit-to-start latency of each task: the time between the task
   becoming runnable (Pool.map called, or the continuation's first stage
   finishing) and a worker starting it. Long tasks and scheduling stalls
   look identical in busy/idle totals; these histograms tell them apart
   — and the per-class views are the point of the stage split: an
   analytic request's wait must not inherit a simulation's runtime. *)
let t_queue = Obs.timer "pool.queue_wait"
let t_queue_analytic = Obs.timer "pool.queue_wait.analytic"
let t_queue_simulation = Obs.timer "pool.queue_wait.simulation"
let t_task = Obs.timer "pool.task"

(* Domains of the current map not running a task right now: set to the
   pool width when a parallel map starts, decremented around each claimed
   task, back to 0 once the map joins. A window min of 0 with a busy
   queue means the pool is saturated; a min above 0 means tasks are too
   coarse to fill it (the starvation signal from ROADMAP item 3). *)
let g_idle = Obs.gauge "pool.idle_domains"

type priority = Analytic | Simulation

type 'b staged = Done of 'b | More of (unit -> 'b)

let validate_jobs s =
  match int_of_string_opt (String.trim s) with Some n when n >= 1 -> Some n | _ -> None

let default_jobs () =
  match Sys.getenv_opt "PROJTILE_JOBS" with
  | None -> Domain.recommended_domain_count ()
  | Some s when String.trim s = "" -> Domain.recommended_domain_count ()
  | Some s -> (
    match validate_jobs s with
    | Some n -> n
    | None ->
      let fallback = Domain.recommended_domain_count () in
      Printf.eprintf
        "projtile: warning: PROJTILE_JOBS=%S is not a positive integer; using %d domain%s\n%!"
        s fallback
        (if fallback = 1 then "" else "s");
      fallback)

let now = Unix.gettimeofday

let record_wait prio dt =
  Obs.add_seconds t_queue dt;
  Obs.add_seconds
    (match prio with Analytic -> t_queue_analytic | Simulation -> t_queue_simulation)
    dt

(* Execution of one stage, wrapped in a "pool.task" span (tagged with
   the item index) on the executing domain's trace lane. *)
let run_stage i g = Obs.Trace.with_span ~arg:i "pool.task" (fun () -> Obs.time t_task g)

(* A schedulable unit: one stage of one item. [t_at] is when it became
   runnable (queue wait is measured from there), [t_prio] the class its
   wait is charged to. [t_run] does the work, writes the item's result
   slot and/or pushes a continuation, and returns how many items it
   completed (0 when it deferred to a continuation). *)
type task = { t_at : float; t_prio : priority; t_run : wid:int -> int }

let map_staged ?jobs ?(coarse = false) ~classify f xs =
  let n = Array.length xs in
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let jobs = min jobs n in
  Obs.incr c_maps;
  Obs.incr ~by:n c_tasks;
  let submitted = now () in
  let results = Array.make n None in
  let finish i r =
    results.(i) <- Some r;
    1
  in
  let exec_cont i g =
    match run_stage i g with
    | v -> finish i (Ok v)
    | exception e -> finish i (Error (e, Printexc.get_raw_backtrace ()))
  in
  (* Both stages fused into one unit — the sequential path and the
     coarse baseline schedule items exactly like the pre-split pool. *)
  let exec_fused i =
    match run_stage i (fun () -> f xs.(i)) with
    | Done v -> finish i (Ok v)
    | More g -> exec_cont i g
    | exception e -> finish i (Error (e, Printexc.get_raw_backtrace ()))
  in
  if jobs <= 1 || n <= 1 then begin
    Obs.record_max c_max_tasks n;
    Obs.time t_wall (fun () ->
      Array.iteri
        (fun i x ->
          record_wait (classify x) (now () -. submitted);
          (* No capture here: on the sequential path the first failure
             propagates immediately, as it always has. *)
          match run_stage i (fun () -> f x) with
          | Done v -> results.(i) <- Some (Ok v)
          | More g ->
            record_wait Simulation 0.0;
            results.(i) <- Some (Ok (run_stage i g)))
        xs)
  end
  else begin
    let classes = Array.map classify xs in
    let completed = Atomic.make 0 in
    let busy = Array.make jobs 0.0 in
    let steals = Array.make jobs 0 in
    let steal_fails = Array.make jobs 0 in
    (* Per-domain, per-class deques: a worker owns analytic.(w) and
       simulation.(w); everyone else steals from them. *)
    let analytic = Array.init jobs (fun _ -> Ws_deque.create ()) in
    let simulation = Array.init jobs (fun _ -> Ws_deque.create ()) in
    let push_cont ~wid i g =
      Ws_deque.push simulation.(wid)
        {
          t_at = now ();
          t_prio = Simulation;
          t_run = (fun ~wid:_ -> exec_cont i g);
        }
    in
    let stage1 i ~wid =
      match run_stage i (fun () -> f xs.(i)) with
      | Done v -> finish i (Ok v)
      | More g ->
        (* The heavy tail of this item goes to the back of the line on
           the worker's own simulation deque; the worker is free to run
           (or lose to a thief) other analytic work first. *)
        push_cont ~wid i g;
        0
      | exception e -> finish i (Error (e, Printexc.get_raw_backtrace ()))
    in
    let steal_from w row =
      let found = ref None in
      let v = ref 1 in
      while !found = None && !v < jobs do
        (match Ws_deque.steal row.((w + !v) mod jobs) with
        | Ws_deque.Stolen t ->
          steals.(w) <- steals.(w) + 1;
          found := Some t
        | Ws_deque.Empty -> ()
        | Ws_deque.Retry -> steal_fails.(w) <- steal_fails.(w) + 1);
        incr v
      done;
      !found
    in
    (* Claim order is the priority gate: all analytic work in the pool —
       own or stolen — before any simulation work. *)
    let find_task w =
      match Ws_deque.pop analytic.(w) with
      | Some t -> Some t
      | None -> (
        match steal_from w analytic with
        | Some t -> Some t
        | None -> (
          match Ws_deque.pop simulation.(w) with
          | Some t -> Some t
          | None -> steal_from w simulation))
    in
    let worker w =
      if w > 0 && Obs.Trace.is_enabled () then
        Obs.Trace.set_lane_name (Printf.sprintf "worker-%d" w);
      let mine = ref 0 in
      let spins = ref 0 in
      while Atomic.get completed < n do
        match find_task w with
        | Some task ->
          spins := 0;
          incr mine;
          record_wait task.t_prio (now () -. task.t_at);
          Obs.add_gauge g_idle (-1);
          let t0 = now () in
          let done_count = task.t_run ~wid:w in
          busy.(w) <- busy.(w) +. (now () -. t0);
          Obs.add_gauge g_idle 1;
          if done_count > 0 then ignore (Atomic.fetch_and_add completed done_count)
        | None ->
          (* Nothing runnable anywhere right now (another worker is
             still producing, or we lost every steal race). Spin briefly,
             then sleep: on few-core hosts a hot spin here would steal
             the timeslice from the very domain we are waiting on. *)
          incr spins;
          if !spins < 32 then Domain.cpu_relax () else Unix.sleepf 50e-6
      done;
      Obs.add_seconds t_busy busy.(w);
      Obs.record_max c_max_tasks !mine;
      if steals.(w) > 0 then Obs.incr ~by:steals.(w) c_steals;
      if steal_fails.(w) > 0 then Obs.incr ~by:steal_fails.(w) c_steal_fails
    in
    let run_workers body =
      let t0 = now () in
      Obs.incr ~by:(jobs - 1) c_domains;
      Obs.set_gauge g_idle jobs;
      let domains = Array.init (jobs - 1) (fun w -> Domain.spawn (fun () -> body (w + 1))) in
      body 0;
      Array.iter Domain.join domains;
      Obs.set_gauge g_idle 0;
      let wall = now () -. t0 in
      Obs.add_seconds t_wall wall;
      (* Idle capacity of this map: jobs * wall minus task-execution time. *)
      let total_busy = Array.fold_left ( +. ) 0.0 busy in
      Obs.add_seconds t_idle (Float.max 0.0 ((float_of_int jobs *. wall) -. total_busy))
    in
    if coarse then begin
      let next = Atomic.make 0 in
      let legacy w =
        if w > 0 && Obs.Trace.is_enabled () then
          Obs.Trace.set_lane_name (Printf.sprintf "worker-%d" w);
        let mine = ref 0 in
        let continue = ref true in
        while !continue do
          let i = Atomic.fetch_and_add next 1 in
          if i >= n then continue := false
          else begin
            incr mine;
            record_wait classes.(i) (now () -. submitted);
            Obs.add_gauge g_idle (-1);
            let t0 = now () in
            ignore (exec_fused i : int);
            busy.(w) <- busy.(w) +. (now () -. t0);
            Obs.add_gauge g_idle 1
          end
        done;
        Obs.add_seconds t_busy busy.(w);
        Obs.record_max c_max_tasks !mine
      in
      run_workers legacy
    end
    else begin
      (* Round-robin initial distribution, pushed before any worker
         exists (single-threaded, so the owner-only push contract holds;
         Domain.spawn publishes the contents). *)
      Array.iteri
        (fun i prio ->
          let row = match prio with Analytic -> analytic | Simulation -> simulation in
          Ws_deque.push row.(i mod jobs)
            { t_at = submitted; t_prio = prio; t_run = stage1 i })
        classes;
      run_workers worker
    end
  end;
  Array.map
    (function
      | Some (Ok v) -> v
      | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
      | None -> assert false)
    results

let map_staged_list ?jobs ?coarse ~classify f l =
  Array.to_list (map_staged ?jobs ?coarse ~classify f (Array.of_list l))

let map ?jobs f xs = map_staged ?jobs ~classify:(fun _ -> Analytic) (fun x -> Done (f x)) xs
let map_list ?jobs f l = Array.to_list (map ?jobs f (Array.of_list l))
