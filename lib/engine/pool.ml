let c_maps = Obs.counter "pool.maps"
let c_tasks = Obs.counter "pool.tasks"
let c_domains = Obs.counter "pool.domains_spawned"
let c_max_tasks = Obs.counter "pool.max_tasks_per_domain"
let t_wall = Obs.timer "pool.map_wall"
let t_busy = Obs.timer "pool.worker_busy"
let t_idle = Obs.timer "pool.worker_idle"

(* Submit-to-start latency of each task: the time between Pool.map being
   called and a worker claiming the task's index. Long tasks and
   scheduling stalls look identical in busy/idle totals; this histogram
   tells them apart. *)
let t_queue = Obs.timer "pool.queue_wait"
let t_task = Obs.timer "pool.task"

(* Domains of the current map not running a task right now: set to the
   pool width when a parallel map starts, decremented around each claimed
   task, back to 0 once the map joins. A window min of 0 with a busy
   queue means the pool is saturated; a min above 0 means tasks are too
   coarse to fill it (the starvation signal from ROADMAP item 3). *)
let g_idle = Obs.gauge "pool.idle_domains"

let validate_jobs s =
  match int_of_string_opt (String.trim s) with Some n when n >= 1 -> Some n | _ -> None

let default_jobs () =
  match Sys.getenv_opt "PROJTILE_JOBS" with
  | None -> Domain.recommended_domain_count ()
  | Some s when String.trim s = "" -> Domain.recommended_domain_count ()
  | Some s -> (
    match validate_jobs s with
    | Some n -> n
    | None ->
      let fallback = Domain.recommended_domain_count () in
      Printf.eprintf
        "projtile: warning: PROJTILE_JOBS=%S is not a positive integer; using %d domain%s\n%!"
        s fallback
        (if fallback = 1 then "" else "s");
      fallback)

(* One claimed task: queue-wait recorded at claim time, execution wrapped
   in a "pool.task" span (tagged with the task index) on the claiming
   domain's trace lane. *)
let run_task ~submitted f x i =
  Obs.add_seconds t_queue (Unix.gettimeofday () -. submitted);
  Obs.Trace.with_span ~arg:i "pool.task" (fun () -> Obs.time t_task (fun () -> f x))

let map ?jobs f xs =
  let n = Array.length xs in
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let jobs = min jobs n in
  Obs.incr c_maps;
  Obs.incr ~by:n c_tasks;
  let submitted = Unix.gettimeofday () in
  if jobs <= 1 || n <= 1 then begin
    Obs.record_max c_max_tasks n;
    Obs.time t_wall (fun () -> Array.mapi (fun i x -> run_task ~submitted f x i) xs)
  end
  else begin
    (* Work-stealing by atomic counter: each domain repeatedly claims the
       next unprocessed index. Distinct indices means distinct result
       slots, so the writes below never race. *)
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let busy = Array.make jobs 0.0 in
    let worker w =
      if w > 0 && Obs.Trace.is_enabled () then
        Obs.Trace.set_lane_name (Printf.sprintf "worker-%d" w);
      let w0 = Unix.gettimeofday () in
      let mine = ref 0 in
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue := false
        else begin
          incr mine;
          Obs.add_gauge g_idle (-1);
          results.(i) <-
            Some
              (match run_task ~submitted f xs.(i) i with
              | v -> Ok v
              | exception e -> Error (e, Printexc.get_raw_backtrace ()));
          Obs.add_gauge g_idle 1
        end
      done;
      busy.(w) <- Unix.gettimeofday () -. w0;
      Obs.add_seconds t_busy busy.(w);
      Obs.record_max c_max_tasks !mine
    in
    let t0 = Unix.gettimeofday () in
    Obs.incr ~by:(jobs - 1) c_domains;
    Obs.set_gauge g_idle jobs;
    let domains = Array.init (jobs - 1) (fun w -> Domain.spawn (fun () -> worker (w + 1))) in
    worker 0;
    Array.iter Domain.join domains;
    Obs.set_gauge g_idle 0;
    let wall = Unix.gettimeofday () -. t0 in
    Obs.add_seconds t_wall wall;
    (* Idle capacity of this map: jobs * wall minus the time the workers
       actually spent in their loops. *)
    let total_busy = Array.fold_left ( +. ) 0.0 busy in
    Obs.add_seconds t_idle (Float.max 0.0 ((float_of_int jobs *. wall) -. total_busy));
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | None -> assert false)
      results
  end

let map_list ?jobs f l = Array.to_list (map ?jobs f (Array.of_list l))
