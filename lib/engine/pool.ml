let default_jobs () =
  match Sys.getenv_opt "PROJTILE_JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let map ?jobs f xs =
  let n = Array.length xs in
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let jobs = min jobs n in
  if jobs <= 1 || n <= 1 then Array.map f xs
  else begin
    (* Work-stealing by atomic counter: each domain repeatedly claims the
       next unprocessed index. Distinct indices means distinct result
       slots, so the writes below never race. *)
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue := false
        else
          results.(i) <-
            Some
              (match f xs.(i) with
              | v -> Ok v
              | exception e -> Error (e, Printexc.get_raw_backtrace ()))
      done
    in
    let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains;
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | None -> assert false)
      results
  end

let map_list ?jobs f l = Array.to_list (map ?jobs f (Array.of_list l))
