type report = Report.t
type sim = Report.sim
type schedule_choice = Pipeline.schedule_choice =
  | Optimal
  | Classic
  | Untiled
  | Permuted of int array
  | Fixed of int array

let analyze ?sims ?shared spec ~m = Pipeline.run (Pipeline.request ?sims ?shared spec ~m)

let analyze_checked ?sims ?shared ?deadline spec ~m =
  Pipeline.run_checked ?deadline (Pipeline.request ?sims ?shared spec ~m)

let run_checked = Pipeline.run_checked
let sweep = Pipeline.sweep
let sweep_checked = Pipeline.sweep_checked
let partition_checked = Pipeline.partition_checked
let partition_validate = Pipeline.partition_validate

let sweep_grid ?jobs ?sims ?shared specs ~ms =
  let reqs =
    List.concat_map
      (fun spec -> List.map (fun m -> Pipeline.request ?sims ?shared spec ~m) ms)
      specs
  in
  Pipeline.sweep ?jobs reqs

let simulate ?policy ?line_words spec ~m choice =
  Pipeline.simulate spec ~m (Pipeline.sim ?policy ?line_words choice)

let words_moved ?policy ?line_words spec ~m choice =
  (simulate ?policy ?line_words spec ~m choice).Report.words_moved

let lower_bound = Pipeline.lower_bound
let solve_lp = Pipeline.solve_lp
let tile = Pipeline.tile
let tile_shared = Pipeline.tile_shared
let hierarchy = Pipeline.hierarchy
let cache_stats = Pipeline.cache_stats
let reset_caches = Pipeline.reset_caches
let cache_snapshot = Pipeline.cache_snapshot
let cache_restore = Pipeline.cache_restore

type plan_mode = Pipeline.plan_mode = Plan_off | Plan_inline | Plan_deferred

let set_plan_mode = Pipeline.set_plan_mode
let plan_mode = Pipeline.plan_mode
let plan_of = Pipeline.plan_of
let install_plan = Pipeline.install_plan
let compile_pending = Pipeline.compile_pending
