let c_saved = Obs.counter "cache.store.saved_entries"
let c_loaded = Obs.counter "cache.store.loaded_entries"
let c_rejected = Obs.counter "cache.store.rejected_entries"
let t_save = Obs.timer "cache.store.save"
let t_load = Obs.timer "cache.store.load"

let file_name = "tilings_caches.json"
let path ~dir = Filename.concat dir file_name

let ensure_dir dir =
  match Unix.mkdir dir 0o755 with
  | () -> Ok ()
  | exception Unix.Unix_error (Unix.EEXIST, _, _) -> Ok ()
  | exception Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "%s: mkdir: %s" dir (Unix.error_message e))

(* Count the entries a snapshot carries without reparsing it: one "k"
   key per table entry plus the plans (their own documents, one "shape"
   each). Cheap and exact because both strings are emitted by us. *)
let count_entries text =
  let count needle =
    let nl = String.length needle and tl = String.length text in
    let n = ref 0 in
    for i = 0 to tl - nl do
      if String.sub text i nl = needle then incr n
    done;
    !n
  in
  count "{\"k\":" + count "\"shape\":"

let save ~dir =
  Obs.time t_save @@ fun () ->
  match ensure_dir dir with
  | Error _ as e -> e
  | Ok () -> (
    let target = path ~dir in
    let tmp = target ^ ".tmp" in
    let text = Pipeline.cache_snapshot () in
    match
      let oc = open_out_bin tmp in
      Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
        output_string oc text;
        output_char oc '\n');
      Sys.rename tmp target
    with
    | () ->
      let n = count_entries text in
      Obs.incr ~by:n c_saved;
      Ok n
    | exception Sys_error msg -> Error msg
    | exception Unix.Unix_error (e, op, _) ->
      Error (Printf.sprintf "%s: %s: %s" target op (Unix.error_message e)))

let load ~dir =
  Obs.time t_load @@ fun () ->
  let target = path ~dir in
  if not (Sys.file_exists target) then Ok (0, 0)
  else
    match
      let ic = open_in_bin target in
      Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
        really_input_string ic (in_channel_length ic))
    with
    | exception Sys_error msg -> Error msg
    | text -> (
      match Pipeline.cache_restore text with
      | Error _ as e -> e
      | Ok (loaded, rejected) ->
        Obs.incr ~by:loaded c_loaded;
        Obs.incr ~by:rejected c_rejected;
        Ok (loaded, rejected))
