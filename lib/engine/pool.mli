(** Deterministic parallel map over OCaml 5 domains, scheduled by
    per-domain work-stealing deques.

    Independent sweep points (per-(M, schedule, policy) simulations,
    per-kernel LP solves) are embarrassingly parallel; this module fans
    them out over a small pool of domains while keeping the result order
    identical to the sequential path — element [i] of the result always
    comes from element [i] of the input, so parallel and sequential runs
    produce byte-identical reports.

    {b Scheduling.} Each worker owns two Chase–Lev deques
    ({!Ws_deque}), one per {!priority} class. Items are dealt
    round-robin at submit; a worker pops its own work LIFO and steals
    FIFO from the others when idle. The claim order is the priority
    gate: {e all} [Analytic] work in the pool — own or stolen — is
    taken before {e any} [Simulation] work, so a sub-millisecond
    analytic request is never stuck behind a multi-second simulation.
    {!map_staged} sharpens this further: an item's cheap first stage
    runs at its submitted class, and the [More] continuation it returns
    (the heavy tail) re-queues on the executing worker's simulation
    deque instead of blocking the lane.

    The pool size defaults to {!Domain.recommended_domain_count} and can
    be overridden with the [PROJTILE_JOBS] environment variable (or the
    [?jobs] argument, which wins). [jobs <= 1] degrades to a plain
    sequential map with no domains spawned.

    Observability: besides the busy/idle/wall timers, every task stage
    records its submit-to-start latency in ["pool.queue_wait"] {e and}
    in its class's ["pool.queue_wait.analytic"] /
    ["pool.queue_wait.simulation"] timer (the per-class histograms are
    the stage split's acceptance metric), its runtime in ["pool.task"],
    and steal outcomes in ["pool.steals"] / ["pool.steal_fails"]
    (failed = lost the CAS race). ["pool.domains_spawned"] counts
    spawned workers, ["pool.idle_domains"] gauges the instantaneous
    idle width, and with {!Obs.Trace} enabled each stage execution is a
    ["pool.task"] span tagged with the item index on the executing
    worker's lane (["worker-N"]; worker 0 is the caller's domain). *)

type priority =
  | Analytic
      (** closed-form / LP / plan work: sub-millisecond, latency-bound *)
  | Simulation  (** cache-simulation work: seconds, throughput-bound *)

type 'b staged =
  | Done of 'b  (** the item finished in its first stage *)
  | More of (unit -> 'b)
      (** cheap stage finished; the thunk is the heavy tail, re-queued
          at [Simulation] class on the executing worker's own deque *)

val default_jobs : unit -> int
(** [PROJTILE_JOBS] if set to a positive integer, otherwise
    {!Domain.recommended_domain_count}. A set-but-invalid value (["0"],
    ["abc"], ["-3"]) falls back too, after printing a one-line warning on
    stderr — misconfiguration is never silent. An empty/blank value
    counts as unset. *)

val validate_jobs : string -> int option
(** The [PROJTILE_JOBS] parse {!default_jobs} uses: [Some n] for a
    (trimmed) positive integer, [None] for anything else. Exposed for
    tests. *)

val map_staged :
  ?jobs:int ->
  ?coarse:bool ->
  classify:('a -> priority) ->
  ('a -> 'b staged) ->
  'a array ->
  'b array
(** [map_staged ~classify f xs] applies [f] to every element with up to
    [jobs] concurrent workers; a [More] thunk returned by [f] is
    scheduled as a separate [Simulation]-class task. Results keep input
    order. If any stage raises, the first (lowest-index) exception is
    re-raised after all domains have joined.

    [~coarse:true] swaps the scheduler for the pre-split baseline — a
    shared claim counter handing out whole fused items in submit order,
    class-blind — and exists so the bench can measure the deque
    scheduler against it; it computes the same results. *)

val map_staged_list :
  ?jobs:int ->
  ?coarse:bool ->
  classify:('a -> priority) ->
  ('a -> 'b staged) ->
  'a list ->
  'b list
(** List version of {!map_staged}. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f xs] applies [f] to every element, running up to [jobs]
    applications concurrently ([map_staged] with every item a
    single-stage [Analytic] task). Results keep input order. If any
    application raises, the first (lowest-index) exception is re-raised
    after all domains have joined. *)

val map_list : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** List version of {!map}. *)
