(** Deterministic parallel map over OCaml 5 domains.

    Independent sweep points (per-(M, schedule, policy) simulations,
    per-kernel LP solves) are embarrassingly parallel; this module fans
    them out over a small pool of domains while keeping the result order
    identical to the sequential path — element [i] of the result always
    comes from element [i] of the input, so parallel and sequential runs
    produce byte-identical reports.

    The pool size defaults to {!Domain.recommended_domain_count} and can
    be overridden with the [PROJTILE_JOBS] environment variable (or the
    [?jobs] argument, which wins). [jobs <= 1] degrades to a plain
    sequential map with no domains spawned.

    Observability: besides the busy/idle/wall timers from PR 2, every
    task records its submit-to-start latency in the
    ["pool.queue_wait"] timer (whose histogram separates scheduling
    stalls from long tasks) and its runtime in ["pool.task"]; with
    {!Obs.Trace} enabled each task execution is a ["pool.task"] span
    tagged with the task index, and each spawned worker gets its own
    trace lane named ["worker-N"] (worker 0 runs on the caller's
    domain and stays on the caller's lane). *)

val default_jobs : unit -> int
(** [PROJTILE_JOBS] if set to a positive integer, otherwise
    {!Domain.recommended_domain_count}. A set-but-invalid value (["0"],
    ["abc"], ["-3"]) falls back too, after printing a one-line warning on
    stderr — misconfiguration is never silent. An empty/blank value
    counts as unset. *)

val validate_jobs : string -> int option
(** The [PROJTILE_JOBS] parse {!default_jobs} uses: [Some n] for a
    (trimmed) positive integer, [None] for anything else. Exposed for
    tests. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f xs] applies [f] to every element, running up to [jobs]
    applications concurrently. Results keep input order. If any
    application raises, the first (lowest-index) exception is re-raised
    after all domains have joined. *)

val map_list : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** List version of {!map}. *)
