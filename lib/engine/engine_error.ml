type t =
  | Parse_error of { line : int; col : int; message : string }
  | Invalid_spec of string
  | Invalid_request of string
  | Cache_too_small of { m : int; min_words : int }
  | Kernel_too_large of { iterations : string; limit : int }
  | Deadline_exceeded of { stage : string }
  | Overloaded of { capacity : int }
  | Shape_too_large of { detail : string }
  | Unfactorable_p of { p : int }
  | Network_model_invalid of string
  | Internal of string

exception Error of t

let raise_error t = raise (Error t)

let code = function
  | Parse_error _ -> "parse_error"
  | Invalid_spec _ -> "invalid_spec"
  | Invalid_request _ -> "invalid_request"
  | Cache_too_small _ -> "cache_too_small"
  | Kernel_too_large _ -> "kernel_too_large"
  | Deadline_exceeded _ -> "deadline_exceeded"
  | Overloaded _ -> "overloaded"
  | Shape_too_large _ -> "shape_too_large"
  | Unfactorable_p _ -> "unfactorable_p"
  | Network_model_invalid _ -> "network_model_invalid"
  | Internal _ -> "internal"

let exit_code = function
  | Parse_error _ -> 2
  | Invalid_spec _ -> 3
  | Cache_too_small _ -> 4
  | Kernel_too_large _ -> 5
  | Deadline_exceeded _ -> 6
  | Overloaded _ -> 7
  | Invalid_request _ -> 8
  | Internal _ -> 10
  | Shape_too_large _ -> 11
  | Unfactorable_p _ -> 12
  | Network_model_invalid _ -> 13

let to_string = function
  | Parse_error { line; col; message } ->
    if line = 0 && col = 0 then Printf.sprintf "parse error: %s" message
    else Printf.sprintf "parse error: line %d, col %d: %s" line col message
  | Invalid_spec msg -> Printf.sprintf "invalid spec: %s" msg
  | Invalid_request msg -> Printf.sprintf "invalid request: %s" msg
  | Cache_too_small { m; min_words } ->
    Printf.sprintf "cache too small for this kernel: m = %d words, need at least %d" m
      min_words
  | Kernel_too_large { iterations; limit } ->
    Printf.sprintf
      "kernel too large to simulate (%s iterations > %d); shrink the bounds" iterations
      limit
  | Deadline_exceeded { stage } ->
    Printf.sprintf "deadline exceeded (in %s)" stage
  | Overloaded { capacity } ->
    Printf.sprintf "server overloaded: admission queue full (capacity %d); retry later"
      capacity
  | Shape_too_large { detail } ->
    Printf.sprintf "shape too large for closed-form/plan compilation: %s" detail
  | Unfactorable_p { p } ->
    Printf.sprintf
      "p = %d has no processor-grid factorization within the loop bounds" p
  | Network_model_invalid msg -> Printf.sprintf "invalid network model: %s" msg
  | Internal msg -> Printf.sprintf "internal error: %s" msg

(* Closed_form.compute and Tiling_plan.compile both refuse oversized
   shapes with an Invalid_argument whose message carries this marker;
   anything else invalid about a spec stays Invalid_spec. *)
let shape_marker = "shape too large"

let contains_marker msg =
  let lm = String.length shape_marker and l = String.length msg in
  let rec go i = i + lm <= l && (String.sub msg i lm = shape_marker || go (i + 1)) in
  go 0

let of_exn = function
  | Error t -> Some t
  | Invalid_argument msg when contains_marker msg -> Some (Shape_too_large { detail = msg })
  | Invalid_argument msg -> Some (Invalid_spec msg)
  | Failure msg -> Some (Internal msg)
  | _ -> None
