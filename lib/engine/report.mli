(** Analysis reports: the typed output of the engine pipeline.

    A report bundles everything one analysis produces — the exact LP
    solution, the arbitrary-bounds lower bound, the integer tiles, any
    simulated executions, and the bound-attainment ratios — together with
    per-stage wall-clock timings. Renderers: {!pp} for humans (stable
    across cache hits and parallel execution, so sequential and parallel
    sweeps can be compared byte-for-byte) and {!to_json} for machines. *)

type sim = {
  label : string;  (** schedule description, e.g. ["optimal"] or ["classic"] *)
  schedule : Schedules.t;
  policy : Policy.t;
  line_words : int;
  stats : Cache.stats;
  words_moved : int;
  ratio : float;  (** [words_moved / bound.words] *)
}

type t = {
  spec : Spec.t;
  m : int;
  beta : Rat.t array;
  bound : Lower_bound.bound;
  lp : Tiling.lp_solution;
  tile : int array;  (** integer tile under the paper's per-array-M model *)
  tile_shared : int array option;
      (** shared-cache tile; present when the request asked for it or a
          simulation needed it *)
  tile_volume : int;
  tile_max_footprint : int;
  tiles : int;  (** number of tiles covering the iteration space *)
  traffic : Tiling.traffic;  (** analytic words moved by the tiled schedule *)
  attainment : float;  (** analytic traffic / lower bound *)
  sims : sim list;  (** in request order *)
  timings : (string * float) list;  (** (stage, seconds), excluded from {!pp} *)
  from_cache : bool;  (** analysis served from the memo cache *)
}

val pp : Format.formatter -> t -> unit
(** Text rendering. Deterministic: timings and cache provenance are not
    printed. *)

val pp_sim : bound:Lower_bound.bound -> m:int -> Format.formatter -> sim -> unit

val to_json : ?timings:bool -> t -> string
(** One JSON object. [timings] (default [true]) also emits the per-stage
    wall times and cache provenance; pass [false] for output meant to be
    compared across runs. *)

val json_of_reports : ?timings:bool -> t list -> string
(** JSON array of {!to_json} objects. *)

val schema_version : int
(** Version of the machine-readable wire schema shared by
    {!json_of_sweep}, the [tilings serve] protocol and
    [BENCH_engine.json]. Currently [1]; consumers must check it
    ([bench/compare.exe] and the CI schema smoke do). *)

val json_of_sweep : ?timings:bool -> ?obs:string -> t list -> string
(** The versioned sweep envelope:
    [{"v": 1, "reports": [...]}], with an extra ["obs"] field when [obs]
    (a pre-rendered JSON value, normally {!Obs.to_json} of a snapshot) is
    given. Schema v1 replaced the unversioned bare-array shape. *)
