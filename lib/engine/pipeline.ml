type schedule_choice =
  | Optimal
  | Classic
  | Untiled
  | Permuted of int array
  | Fixed of int array

type sim_request = { schedule : schedule_choice; policy : Policy.t; line_words : int }

let sim ?(policy = Policy.Lru) ?(line_words = 1) schedule = { schedule; policy; line_words }

type request = { rspec : Spec.t; rm : int; rsims : sim_request list; rshared : bool }

let request ?(sims = []) ?(shared = false) spec ~m =
  { rspec = spec; rm = m; rsims = sims; rshared = shared }

(* ------------------------------------------------------------------ *)
(* Memoized stages                                                    *)
(* ------------------------------------------------------------------ *)

(* The analysis of a request depends only on the canonical (spec, beta)
   pair plus the cache size m (beta alone does not pin down integer tile
   rounding), so that is the cache key throughout. *)

type analysis = {
  a_beta : Rat.t array;
  a_bound : Lower_bound.bound;
  a_lp : Tiling.lp_solution;
  a_tile : int array;
  a_volume : int;
  a_max_footprint : int;
  a_tiles : int;
  a_traffic : Tiling.traffic;
  a_attainment : float;
}

let lp_cache : Tiling.lp_solution Memo.t = Memo.create ~name:"lp" ()
let analysis_cache : analysis Memo.t = Memo.create ~name:"analysis" ()
let shared_cache : int array Memo.t = Memo.create ~name:"shared" ()

(* Optimal simplex bases from earlier lexmax sub-solves, keyed by
   (spec, beta, k). A hit lets Tiling.solve_lp_lexmax replace a simplex
   solve with one exact certification (Simplex.certify); a stale or
   wrong basis just fails certification and falls through, so this cache
   can never change an answer — only its cost. *)
let basis_cache : int array Memo.t = Memo.create ~name:"basis" ()

let t_lp = Obs.timer "pipeline.solve_lp"
let t_lower = Obs.timer "pipeline.lower_bound"
let t_tile = Obs.timer "pipeline.tile"

(* Stage instrumentation: charge the timer (and its histogram) and, when
   tracing is on, emit a span on the current domain's lane. Memoized
   stages are timed around the cache lookup too, so hit latency is the
   distribution's fast mode and misses are its tail. *)
let staged name tm f = Obs.Trace.with_span name (fun () -> Obs.time tm f)

(* ------------------------------------------------------------------ *)
(* The tiling-plan fast path                                          *)
(* ------------------------------------------------------------------ *)

(* A compiled Tiling_plan answers every (beta, m) for its shape with
   pure rational arithmetic, so the plan cache sits in front of the
   (spec, beta)-keyed LP memo: a plan hit never touches the LP stage at
   all. Both paths return the lexicographically maximal optimum
   (Tiling.solve_lp_lexmax), so reports are byte-identical whichever
   served them. Shapes whose plan compilation is refused (enumeration
   budget) are negative-cached and permanently served by the LP path. *)

type plan_mode = Plan_off | Plan_inline | Plan_deferred

type plan_entry = Plan_ready of Tiling_plan.t | Plan_failed of string

let plan_cache : plan_entry Memo.t = Memo.create ~name:"plan" ()
let t_plan_compile = Obs.timer "plan.compile"
let c_plan_fallbacks = Obs.counter "plan.lp_fallbacks"

let plan_mode_state = Atomic.make Plan_inline
let set_plan_mode m = Atomic.set plan_mode_state m
let plan_mode () = Atomic.get plan_mode_state

(* Shapes seen while in Plan_deferred mode, waiting for a batch-boundary
   compile (serve drains this on the Pool after responding). *)
let pending_lock = Mutex.create ()
let pending_shapes : (string, Spec.t) Hashtbl.t = Hashtbl.create 16

let note_pending key spec =
  Mutex.lock pending_lock;
  if not (Hashtbl.mem pending_shapes key) then Hashtbl.add pending_shapes key spec;
  Mutex.unlock pending_lock

let take_pending () =
  Mutex.lock pending_lock;
  let l = Hashtbl.fold (fun k s acc -> (k, s) :: acc) pending_shapes [] in
  Hashtbl.reset pending_shapes;
  Mutex.unlock pending_lock;
  List.sort (fun (k1, _) (k2, _) -> String.compare k1 k2) l |> List.map snd

let pending_count () =
  Mutex.lock pending_lock;
  let n = Hashtbl.length pending_shapes in
  Mutex.unlock pending_lock;
  n

let compile_entry spec =
  match staged "plan.compile" t_plan_compile (fun () -> Tiling_plan.compile spec) with
  | p -> Plan_ready p
  | exception Invalid_argument msg -> Plan_failed msg

let install_plan p = Memo.add plan_cache (Tiling_plan.key p) (Plan_ready p)

let compile_and_install spec =
  let entry = compile_entry spec in
  Memo.add plan_cache (Memo.key_of_shape spec) entry;
  entry

let compile_pending ?jobs () =
  match take_pending () with
  | [] -> 0
  | specs ->
    let entries = Pool.map_list ?jobs (fun spec -> (Memo.key_of_shape spec, compile_entry spec)) specs in
    List.iter (fun (key, entry) -> Memo.add plan_cache key entry) entries;
    List.length entries

let plan_of spec =
  let key = Memo.key_of_shape spec in
  let of_entry = function
    | Plan_ready p -> Ok p
    | Plan_failed msg -> Error (Engine_error.Shape_too_large { detail = msg })
  in
  match Memo.find_opt plan_cache key with
  | Some entry -> of_entry entry
  | None -> of_entry (compile_and_install spec)

let lp_lexmax spec ~beta =
  let key = Memo.key_of_spec_beta spec ~beta in
  Memo.find_or_add lp_cache key (fun () ->
    (* Warm-start bases are keyed by the kernel {e shape}, not by this
       cache's (spec, beta) key: the hooks only ever run inside this
       miss closure, where the (spec, beta) key is by construction
       fresh, so bases keyed by it could never be found again (that was
       the 0%-hit-rate bug). Sharing one slot per (shape, k) across all
       sizes is sound because a candidate basis is exactly certified
       (Simplex.certify) before use and merely falls through on a
       mismatch — a stale basis costs one failed certification, a fresh
       one replaces a simplex solve. [replace] keeps the most recently
       certified basis: with first-writer-wins a basis that stops
       certifying would be pinned forever. *)
    let shape = Memo.key_of_shape spec in
    let hooks =
      {
        Tiling.lookup = (fun k -> Memo.find_opt basis_cache (Memo.key_of_basis shape ~k));
        store = (fun k basis -> Memo.replace basis_cache (Memo.key_of_basis shape ~k) basis);
      }
    in
    Tiling.solve_lp_lexmax ~hooks spec ~beta)

let plan_lp_solution plan spec ~beta =
  let lambda, value = Tiling_plan.answer plan ~beta in
  { Tiling.lambda; value; dual = Tiling_plan.dual plan spec ~beta }

let solve_lp spec ~beta =
  staged "pipeline.solve_lp" t_lp (fun () ->
    match plan_mode () with
    | Plan_off -> lp_lexmax spec ~beta
    | mode -> (
      let key = Memo.key_of_shape spec in
      match Memo.find_opt plan_cache key with
      | Some (Plan_ready plan) -> plan_lp_solution plan spec ~beta
      | Some (Plan_failed _) ->
        Obs.incr c_plan_fallbacks;
        lp_lexmax spec ~beta
      | None ->
        (* Answer this request on the LP path, then make the shape's
           plan available for every later size: inline right now, or at
           the next batch boundary when deferred. *)
        let sol = lp_lexmax spec ~beta in
        (match mode with
        | Plan_inline -> ignore (compile_and_install spec)
        | Plan_deferred -> note_pending key spec
        | Plan_off -> ());
        sol))

let key_of_request spec ~m =
  let beta = Lower_bound.beta_of_bounds ~m spec.Spec.bounds in
  (beta, Memo.key_of_spec_beta spec ~beta ^ ";m=" ^ string_of_int m)

let compute_analysis spec ~m ~beta =
  let bound = staged "pipeline.lower_bound" t_lower (fun () -> Lower_bound.communication spec ~m) in
  let lp = solve_lp spec ~beta in
  let tile = staged "pipeline.tile" t_tile (fun () -> Tiling.of_lambda spec ~m lp.Tiling.lambda) in
  let traffic = Tiling.analytic_traffic spec tile in
  let moved = traffic.Tiling.reads +. traffic.Tiling.writes in
  {
    a_beta = beta;
    a_bound = bound;
    a_lp = lp;
    a_tile = tile;
    a_volume = Tiling.volume tile;
    a_max_footprint = Tiling.max_footprint spec tile;
    a_tiles = Tiling.num_tiles spec tile;
    a_traffic = traffic;
    a_attainment =
      (if bound.Lower_bound.words > 0.0 then moved /. bound.Lower_bound.words else nan);
  }

(* Returns the analysis plus whether it came out of the cache. *)
let analysis spec ~m =
  let beta, key = key_of_request spec ~m in
  match Memo.find_opt analysis_cache key with
  | Some a -> (a, true)
  | None ->
    let a = compute_analysis spec ~m ~beta in
    Memo.add analysis_cache key a;
    (a, false)

let lower_bound spec ~m = (fst (analysis spec ~m)).a_bound
let tile spec ~m = (fst (analysis spec ~m)).a_tile

let tile_shared spec ~m =
  Obs.Trace.with_span "pipeline.tile_shared" (fun () ->
    let _, key = key_of_request spec ~m in
    Memo.find_or_add shared_cache key (fun () -> Tiling.optimal_shared spec ~m))

let schedule_of spec ~m = function
  | Optimal -> Schedules.Tiled (tile_shared spec ~m)
  | Classic -> Schedules.Tiled (Schedules.classic_tile spec ~m)
  | Untiled -> Schedules.Untiled
  | Permuted p -> Schedules.Permuted p
  | Fixed b -> Schedules.Tiled b

(* ------------------------------------------------------------------ *)
(* Execution                                                          *)
(* ------------------------------------------------------------------ *)

let simulate spec ~m (s : sim_request) : Report.sim =
  Obs.Trace.with_span "pipeline.simulate" (fun () ->
  let sched = schedule_of spec ~m s.schedule in
  let r = Executor.run ~line_words:s.line_words ~policy:s.policy spec ~schedule:sched ~capacity:m in
  let bound = lower_bound spec ~m in
  {
    Report.label = Schedules.description spec sched;
    schedule = sched;
    policy = s.policy;
    line_words = s.line_words;
    stats = r.Executor.stats;
    words_moved = r.Executor.words_moved;
    ratio =
      (if bound.Lower_bound.words > 0.0 then
         float_of_int r.Executor.words_moved /. bound.Lower_bound.words
       else nan);
  })

let now = Unix.gettimeofday

let c_requests = Obs.counter "pipeline.requests"
let c_simulations = Obs.counter "pipeline.simulations"
let t_analysis = Obs.timer "pipeline.analysis"
let t_shared = Obs.timer "pipeline.shared_tile"
let t_simulate = Obs.timer "pipeline.simulate"

(* Run [f], charge its duration to [tm] (and emit a [span] when tracing),
   and also return the duration so the per-report [timings] list keeps
   its existing shape. *)
let timed span tm f =
  Obs.Trace.with_span span (fun () ->
    let t0 = now () in
    let v = f () in
    let dt = now () -. t0 in
    Obs.add_seconds tm dt;
    (v, dt))

(* Cooperative deadlines: the checked entry points thread an absolute
   wall-clock deadline through the stage sequence; it is tested at stage
   boundaries (cheap, no preemption), so a request can overshoot by at
   most one stage.  [Deadline_hit] never escapes [run_checked]. *)
exception Deadline_hit of string

let guard deadline stage =
  match deadline with
  | Some t when Unix.gettimeofday () >= t -> raise (Deadline_hit stage)
  | _ -> ()

(* The cheap half of a request: the memoized analysis (LP/plan lookup,
   lower bound, tile). On the pool this runs at the request's submitted
   class; for an analytic request it is the whole request. *)
let analysis_half ?deadline req =
  let spec = req.rspec and m = req.rm in
  Obs.incr c_requests;
  Obs.incr ~by:(List.length req.rsims) c_simulations;
  guard deadline "analysis";
  timed "pipeline.analysis" t_analysis (fun () -> analysis spec ~m)

(* The heavy half: the shared-tile search (when wanted) and every cache
   simulation. For simulation-carrying requests this is the [More]
   continuation that re-queues at Simulation class. *)
let simulate_half ?deadline req =
  let spec = req.rspec and m = req.rm in
  guard deadline "shared_tile";
  let shared, d_shared =
    timed "pipeline.shared_tile" t_shared (fun () ->
      let want_shared =
        req.rshared || List.exists (fun s -> s.schedule = Optimal) req.rsims
      in
      if want_shared then Some (tile_shared spec ~m) else None)
  in
  let sims, d_simulate =
    timed "pipeline.simulate_stage" t_simulate (fun () ->
      List.map
        (fun s ->
          guard deadline "simulate";
          simulate spec ~m s)
        req.rsims)
  in
  (shared, d_shared, sims, d_simulate)

let assemble req ((a, from_cache), d_analysis) (shared, d_shared, sims, d_simulate) =
  let spec = req.rspec and m = req.rm in
  (* Stage-level debug event; the ambient correlation id (set by serve
     around each request) attributes it to the request that ran us. The
     is_enabled guard keeps field construction off the default path. *)
  if Obs.Log.is_enabled Obs.Log.Debug then
    Obs.Log.debug "pipeline.request"
      [
        ("kernel", `S spec.Spec.name);
        ("m", `I m);
        ("sims", `I (List.length req.rsims));
        ("from_cache", `B from_cache);
        ("analysis_ms", `F (1e3 *. d_analysis));
        ("shared_tile_ms", `F (1e3 *. d_shared));
        ("simulate_ms", `F (1e3 *. d_simulate));
      ];
  {
    Report.spec;
    m;
    beta = a.a_beta;
    bound = a.a_bound;
    lp = a.a_lp;
    tile = a.a_tile;
    tile_shared = shared;
    tile_volume = a.a_volume;
    tile_max_footprint = a.a_max_footprint;
    tiles = a.a_tiles;
    traffic = a.a_traffic;
    attainment = a.a_attainment;
    sims;
    timings =
      [ ("analysis", d_analysis); ("shared_tile", d_shared); ("simulate", d_simulate) ];
    from_cache;
  }

let sim_iteration_limit = 20_000_000

let validate req =
  let spec = req.rspec and m = req.rm in
  let min_words = max 2 (Spec.num_arrays spec) in
  if m < min_words then Some (Engine_error.Cache_too_small { m; min_words })
  else if req.rsims <> [] then begin
    (* Exact comparison: the native iteration product wraps for 2^21-cubed
       bounds and would sail straight past a native-int guard. *)
    let n = Spec.iteration_count_big spec in
    if Bigint.compare n (Bigint.of_int sim_iteration_limit) > 0 then
      Some
        (Engine_error.Kernel_too_large
           { iterations = Bigint.to_string n; limit = sim_iteration_limit })
    else None
  end
  else None

let catch_errors f =
  match f () with
  | r -> Ok r
  | exception Deadline_hit stage -> Error (Engine_error.Deadline_exceeded { stage })
  | exception e -> (
    match Engine_error.of_exn e with Some t -> Error t | None -> raise e)

let classify req = if req.rsims = [] then Pool.Analytic else Pool.Simulation

let run_staged ?deadline req =
  match validate req with
  | Some e -> Pool.Done (Error e)
  | None ->
    if req.rsims = [] then
      Pool.Done
        (catch_errors (fun () ->
           let first = analysis_half ?deadline req in
           assemble req first (simulate_half ?deadline req)))
    else (
      match catch_errors (fun () -> analysis_half ?deadline req) with
      | Error e -> Pool.Done (Error e)
      | Ok first ->
        Pool.More
          (fun () ->
            catch_errors (fun () -> assemble req first (simulate_half ?deadline req))))

let run_checked ?deadline req =
  match run_staged ?deadline req with Pool.Done r -> r | Pool.More f -> f ()

let run req =
  match run_checked req with Ok r -> r | Error e -> Engine_error.raise_error e

let sweep_checked ?jobs ?coarse ?deadline reqs =
  Pool.map_staged_list ?jobs ?coarse ~classify (run_staged ?deadline) reqs

let sweep ?jobs reqs =
  List.map
    (function Ok r -> r | Error e -> Engine_error.raise_error e)
    (sweep_checked ?jobs reqs)

(* ------------------------------------------------------------------ *)
(* Distributed-memory partitioning                                    *)
(* ------------------------------------------------------------------ *)

(* Partition solutions depend on the canonical spec plus (p, M_local,
   network model); all four land in the memo key. The network model's
   canonical short form (Partition_solve.net_to_key) renders rationals
   exactly, so distinct alpha/beta never alias. *)
let partition_cache : Partition_solve.solution Memo.t = Memo.create ~name:"partition" ()

let c_part_enumerated = Obs.counter "partition.grids_enumerated"
let c_part_pruned = Obs.counter "partition.pruned"
let t_partition = Obs.timer "partition.solve"

let key_of_partition spec ~p ~m_local ~net =
  Printf.sprintf "%s;p=%d;M=%d;net=%s" (Memo.key_of_spec spec) p m_local
    (Partition_solve.net_to_key net)

let validate_net = function
  | Partition_solve.Words -> None
  | Partition_solve.Alpha_beta { alpha; beta } ->
    if Rat.sign alpha < 0 then
      Some
        (Engine_error.Network_model_invalid
           (Printf.sprintf "alpha must be non-negative (got %s)" (Rat.to_string alpha)))
    else if Rat.sign beta < 0 then
      Some
        (Engine_error.Network_model_invalid
           (Printf.sprintf "beta must be non-negative (got %s)" (Rat.to_string beta)))
    else None

let partition_checked ?deadline ?budget spec ~p ~m_local ~net =
  let min_words = max 2 (Spec.num_arrays spec) in
  if p < 1 then
    Error
      (Engine_error.Invalid_request (Printf.sprintf "p must be positive (got %d)" p))
  else if m_local < min_words then
    Error (Engine_error.Cache_too_small { m = m_local; min_words })
  else
    match validate_net net with
    | Some e -> Error e
    | None ->
      let key = key_of_partition spec ~p ~m_local ~net in
      catch_errors (fun () ->
        guard deadline "partition";
        match Memo.find_opt partition_cache key with
        | Some sol -> sol
        | None -> (
          match
            staged "partition.solve" t_partition (fun () ->
              Partition_solve.solve ?budget spec ~p ~m_local ~net)
          with
          | None -> Engine_error.raise_error (Engine_error.Unfactorable_p { p })
          | Some sol ->
            Obs.incr ~by:sol.Partition_solve.grids_enumerated c_part_enumerated;
            Obs.incr ~by:sol.Partition_solve.grids_pruned c_part_pruned;
            Memo.add partition_cache key sol;
            sol))

type partition_group = {
  pg_block : int array;
  pg_procs : int;
  pg_words : int;  (** simulated distinct words for this block shape *)
}

type partition_validation = {
  pv_groups : partition_group list;
  pv_max_words : Bigint.t;
  pv_matches : bool;
}

(* Execute the claim: one Pool task per distinct block shape (a domain
   stands in for every processor in the shape's group — their sub-nests
   are congruent, so one simulation covers the lot), count the distinct
   words each touches, and compare the largest against the solution's
   modeled gather footprint. Exact equality is the acceptance bar: the
   model is a closed-form count of the same set the simulation
   enumerates. *)
let partition_validate ?jobs spec (sol : Partition_solve.solution) =
  let groups = Comm_model.block_groups spec ~grid:sol.Partition_solve.grid in
  let oversized =
    List.find_opt
      (fun (block, _) ->
        let n = Spec.iteration_count_big (Spec.with_bounds spec block) in
        Bigint.compare n (Bigint.of_int sim_iteration_limit) > 0)
      groups
  in
  match oversized with
  | Some (block, _) ->
    Error
      (Engine_error.Kernel_too_large
         {
           iterations =
             Bigint.to_string (Spec.iteration_count_big (Spec.with_bounds spec block));
           limit = sim_iteration_limit;
         })
  | None ->
    catch_errors (fun () ->
      let sims =
        Pool.map_list ?jobs
          (fun (block, procs) ->
            {
              pg_block = block;
              pg_procs = procs;
              pg_words = Comm_model.simulated_block spec ~block;
            })
          groups
      in
      let max_words =
        List.fold_left (fun acc g -> max acc g.pg_words) 0 sims
      in
      {
        pv_groups = sims;
        pv_max_words = Bigint.of_int max_words;
        pv_matches =
          Bigint.equal (Bigint.of_int max_words) sol.Partition_solve.gather_words;
      })

(* ------------------------------------------------------------------ *)
(* Hierarchies                                                        *)
(* ------------------------------------------------------------------ *)

type hierarchy_report = {
  hspec : Spec.t;
  hcapacities : int array;
  htiles : int array list;
  hresult : Executor.hierarchy_result;
}

let nested_cache : int array list Memo.t = Memo.create ~name:"nested" ()

let nested_tiles spec ~capacities =
  let key =
    Memo.key_of_spec spec ^ ";ms="
    ^ String.concat "," (List.map string_of_int (Array.to_list capacities))
  in
  Memo.find_or_add nested_cache key (fun () -> Tiling.nested spec ~ms:capacities)

let hierarchy ?policy spec ~capacities =
  let tiles = nested_tiles spec ~capacities in
  let hresult =
    Executor.run_hierarchy ?policy spec ~schedule:(Schedules.Nested tiles) ~capacities
  in
  { hspec = spec; hcapacities = capacities; htiles = tiles; hresult }

(* ------------------------------------------------------------------ *)
(* Cache persistence                                                  *)
(* ------------------------------------------------------------------ *)

(* A versioned JSON document of every durable memo table, so a restarted
   daemon (or a fresh replica) boots warm. Persisted: the LP solutions,
   the warm-start simplex bases, the shared tiles, the nested-tiling
   table and the compiled plans. Deliberately not persisted: the
   analysis cache (cheap to rebuild from a warm LP/plan table and full
   of floats) and Plan_failed negative entries (re-failing is cheap).
   Entries are emitted in sorted key order and rationals as exact
   strings, so snapshot -> restore -> snapshot is byte-identical. *)

let snapshot_version = 1

let buf_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let cache_snapshot () =
  let buf = Buffer.create 8192 in
  let str s = buf_json_string buf s in
  let rat_array rs =
    Buffer.add_char buf '[';
    Array.iteri
      (fun i r ->
        if i > 0 then Buffer.add_char buf ',';
        str (Rat.to_string r))
      rs;
    Buffer.add_char buf ']'
  in
  let int_array label ints =
    Buffer.add_string buf label;
    Buffer.add_char buf '[';
    Array.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (string_of_int x))
      ints;
    Buffer.add_char buf ']'
  in
  let section name entries emit =
    Buffer.add_char buf ',';
    str name;
    Buffer.add_string buf ":[";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf "{\"k\":";
        str k;
        emit v;
        Buffer.add_char buf '}')
      entries;
    Buffer.add_char buf ']'
  in
  Buffer.add_string buf (Printf.sprintf "{\"v\":%d" snapshot_version);
  section "lp" (Memo.to_alist lp_cache) (fun (sol : Tiling.lp_solution) ->
    Buffer.add_string buf ",\"lambda\":";
    rat_array sol.Tiling.lambda;
    Buffer.add_string buf ",\"value\":";
    str (Rat.to_string sol.Tiling.value);
    Buffer.add_string buf ",\"dual\":";
    rat_array sol.Tiling.dual);
  section "basis" (Memo.to_alist basis_cache) (fun b -> int_array ",\"b\":" b);
  section "shared" (Memo.to_alist shared_cache) (fun t -> int_array ",\"t\":" t);
  section "nested" (Memo.to_alist nested_cache) (fun ts ->
    Buffer.add_string buf ",\"ts\":[";
    List.iteri
      (fun i t ->
        if i > 0 then Buffer.add_char buf ',';
        int_array "" t)
      ts;
    Buffer.add_char buf ']');
  (* Plans are embedded as their own canonical JSON documents
     (Tiling_plan.to_json), which already round-trip byte-identically. *)
  Buffer.add_string buf ",\"plans\":[";
  let first = ref true in
  List.iter
    (fun (_, entry) ->
      match entry with
      | Plan_ready p ->
        if not !first then Buffer.add_char buf ',';
        first := false;
        Buffer.add_string buf (Tiling_plan.to_json p)
      | Plan_failed _ -> ())
    (Memo.to_alist plan_cache);
  Buffer.add_string buf "]}";
  Buffer.contents buf

(* Per-entry validation on restore: a malformed entry is skipped and
   counted, never fatal — a corrupt snapshot degrades to a colder boot,
   not a dead daemon. Only a malformed container (unparseable JSON,
   missing/wrong version) rejects the whole document. *)

let json_ints j =
  Option.bind (Jsonlite.to_list j) (fun l ->
    let rec go acc = function
      | [] -> Some (Array.of_list (List.rev acc))
      | x :: tl -> (
        match Jsonlite.to_num x with
        | Some f when Float.is_integer f -> go (int_of_float f :: acc) tl
        | _ -> None)
    in
    go [] l)

let json_rats j =
  Option.bind (Jsonlite.to_list j) (fun l ->
    let rec go acc = function
      | [] -> Some (Array.of_list (List.rev acc))
      | x :: tl -> (
        match Option.bind (Jsonlite.to_str x) Rat.of_string_opt with
        | Some r -> go (r :: acc) tl
        | None -> None)
    in
    go [] l)

let cache_restore text =
  match Jsonlite.parse text with
  | Error msg -> Error ("cache snapshot: " ^ msg)
  | Ok json -> (
    match Jsonlite.num_member "v" json with
    | None -> Error "cache snapshot: missing \"v\" version field"
    | Some v when v <> float_of_int snapshot_version ->
      Error
        (Printf.sprintf "cache snapshot: unsupported version %g (want %d)" v
           snapshot_version)
    | Some _ ->
      let loaded = ref 0 and rejected = ref 0 in
      let each name accept =
        match Jsonlite.list_member name json with
        | None -> ()
        | Some l ->
          List.iter (fun e -> if accept e then incr loaded else incr rejected) l
      in
      let keyed f e =
        match Jsonlite.str_member "k" e with None -> false | Some k -> f k e
      in
      each "lp"
        (keyed (fun k e ->
           match
             ( Option.bind (Jsonlite.member "lambda" e) json_rats,
               Option.bind (Jsonlite.str_member "value" e) Rat.of_string_opt,
               Option.bind (Jsonlite.member "dual" e) json_rats )
           with
           | Some lambda, Some value, Some dual ->
             Memo.add lp_cache k { Tiling.lambda; value; dual };
             true
           | _ -> false));
      each "basis"
        (keyed (fun k e ->
           match Option.bind (Jsonlite.member "b" e) json_ints with
           | Some b ->
             Memo.add basis_cache k b;
             true
           | None -> false));
      each "shared"
        (keyed (fun k e ->
           match Option.bind (Jsonlite.member "t" e) json_ints with
           | Some t ->
             Memo.add shared_cache k t;
             true
           | None -> false));
      each "nested"
        (keyed (fun k e ->
           match Jsonlite.list_member "ts" e with
           | None -> false
           | Some ts_json ->
             let ts = List.map json_ints ts_json in
             if List.for_all Option.is_some ts then begin
               Memo.add nested_cache k (List.map Option.get ts);
               true
             end
             else false));
      each "plans" (fun e ->
        match Tiling_plan.of_json e with
        | Ok p ->
          install_plan p;
          true
        | Error _ -> false);
      Ok (!loaded, !rejected))

(* ------------------------------------------------------------------ *)
(* Introspection                                                      *)
(* ------------------------------------------------------------------ *)

let cache_stats () =
  let tables_hits =
    Memo.hits lp_cache + Memo.hits analysis_cache + Memo.hits shared_cache
    + Memo.hits nested_cache + Memo.hits plan_cache + Memo.hits partition_cache
  in
  let tables_misses =
    Memo.misses lp_cache + Memo.misses analysis_cache + Memo.misses shared_cache
    + Memo.misses nested_cache + Memo.misses plan_cache + Memo.misses partition_cache
  in
  (tables_hits, tables_misses)

let reset_caches () =
  Memo.clear lp_cache;
  Memo.clear analysis_cache;
  Memo.clear shared_cache;
  Memo.clear nested_cache;
  Memo.clear plan_cache;
  Memo.clear basis_cache;
  Memo.clear partition_cache;
  Mutex.lock pending_lock;
  Hashtbl.reset pending_shapes;
  Mutex.unlock pending_lock
