(** Disk persistence for the engine's memo caches.

    One file per cache directory — [tilings_caches.json], the versioned
    snapshot produced by {!Pipeline.cache_snapshot}. The serve CLI's
    [--cache-dir DIR] loads it at boot and rewrites it on drain, so
    restarts and new replicas start with warm LP/plan/basis tables
    instead of cold-solving every shape again.

    Durability: saves write to a temp file in the same directory and
    [rename] over the target, so a crash mid-save leaves the previous
    snapshot intact. Loads are corruption-tolerant per entry (see
    {!Pipeline.cache_restore}): a damaged entry is skipped and counted,
    only an unreadable/mis-versioned document fails the load — and even
    that is a warning at the call site, never a dead daemon.

    Observability: counters [cache.store.saved_entries],
    [cache.store.loaded_entries], [cache.store.rejected_entries] and
    timers [cache.store.save] / [cache.store.load]. *)

val file_name : string
(** ["tilings_caches.json"]. *)

val path : dir:string -> string

val save : dir:string -> (int, string) result
(** Snapshot every durable cache into [dir] (created if missing),
    atomically. [Ok n] is the number of entries written. *)

val load : dir:string -> (int * int, string) result
(** Restore the snapshot in [dir] into the caches. [Ok (loaded,
    rejected)]; a missing file is [Ok (0, 0)] — first boot is not an
    error. *)
