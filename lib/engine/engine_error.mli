(** Typed errors for the checked engine API.

    Every way an analysis request can fail — short of a bug — is one of
    these constructors. {!Pipeline.run_checked} / {!Engine.run_checked}
    return them as [result]s; the CLI renders them with distinct exit
    codes; the [tilings serve] daemon serializes them as structured
    error responses keyed by {!code}.

    Migration note: the raising entry points ([Pipeline.run],
    [Engine.analyze], ...) are now thin wrappers that raise {!Error}
    around the checked ones. New code should call the [_checked]
    variants and match on [t]; the exception exists so one-shot scripts
    and the examples keep their straight-line shape. *)

type t =
  | Parse_error of { line : int; col : int; message : string }
      (** user-supplied text (kernel DSL or a wire request line) failed
          to parse; positions are 1-based, 0 when unknown *)
  | Invalid_spec of string
      (** the spec is structurally invalid, or an unknown preset *)
  | Invalid_request of string
      (** a wire request decoded as JSON but has the wrong shape or an
          unsupported schema version *)
  | Cache_too_small of { m : int; min_words : int }
      (** [m] words cannot hold one word per array (or is below the
          2-word floor the bound needs) *)
  | Kernel_too_large of { iterations : string; limit : int }
      (** a simulation was requested but the exact iteration count
          (rendered as a decimal string — it may exceed [max_int])
          is past the simulator's budget *)
  | Deadline_exceeded of { stage : string }
      (** the request's deadline passed before/while running [stage] *)
  | Overloaded of { capacity : int }
      (** admission queue full: the request was rejected, not queued *)
  | Shape_too_large of { detail : string }
      (** {!Closed_form.compute} or {!Tiling_plan.compile} refused the
          shape: its vertex-enumeration candidate count exceeds the
          budget. Analysis requests for such shapes still succeed via
          the direct LP path; only explicit compilation fails. *)
  | Unfactorable_p of { p : int }
      (** a partition request's processor count has no grid
          factorization within the kernel's loop bounds (e.g. a prime
          [p] larger than every bound) *)
  | Network_model_invalid of string
      (** a partition request's network model is malformed: negative
          [alpha]/[beta], non-rational values, or an unknown model name *)
  | Internal of string  (** an invariant violation surfaced as [Failure] *)

exception Error of t

val raise_error : t -> 'a
(** [raise (Error t)], typed as ['a] for tail positions. *)

val code : t -> string
(** Stable wire identifier: ["parse_error"], ["invalid_spec"],
    ["invalid_request"], ["cache_too_small"], ["kernel_too_large"],
    ["deadline_exceeded"], ["overloaded"], ["shape_too_large"],
    ["unfactorable_p"], ["network_model_invalid"], ["internal"]. *)

val exit_code : t -> int
(** Distinct CLI exit codes, disjoint from 0 (success), 1 (generic) and
    cmdliner's 124/125: parse_error 2, invalid_spec 3, cache_too_small 4,
    kernel_too_large 5, deadline_exceeded 6, overloaded 7,
    invalid_request 8, internal 10, shape_too_large 11,
    unfactorable_p 12, network_model_invalid 13. *)

val to_string : t -> string
(** Human-readable one-line message (no trailing newline). *)

val of_exn : exn -> t option
(** Classify an exception raised by the analysis stack:
    [Error t] itself, [Invalid_argument] (-> [Shape_too_large] when the
    message carries the enumerators' ["shape too large"] marker,
    [Invalid_spec] otherwise) and [Failure] (-> [Internal]). [None] for
    anything else — asynchronous exceptions must not be swallowed. *)
