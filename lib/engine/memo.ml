type 'a t = {
  table : (string, 'a) Hashtbl.t;
  lock : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  obs_hits : Obs.counter option;
  obs_misses : Obs.counter option;
  obs_entries : Obs.gauge option;
}

let create ?name () =
  {
    table = Hashtbl.create 64;
    lock = Mutex.create ();
    hits = 0;
    misses = 0;
    obs_hits = Option.map (fun n -> Obs.counter ("memo." ^ n ^ ".hits")) name;
    obs_misses = Option.map (fun n -> Obs.counter ("memo." ^ n ^ ".misses")) name;
    obs_entries = Option.map (fun n -> Obs.gauge ("memo." ^ n ^ ".entries")) name;
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let find_opt t key =
  with_lock t (fun () ->
    match Hashtbl.find_opt t.table key with
    | Some v ->
      t.hits <- t.hits + 1;
      Option.iter (fun c -> Obs.incr c) t.obs_hits;
      Some v
    | None ->
      t.misses <- t.misses + 1;
      Option.iter (fun c -> Obs.incr c) t.obs_misses;
      None)

let add t key v =
  with_lock t (fun () ->
    if not (Hashtbl.mem t.table key) then begin
      Hashtbl.add t.table key v;
      Option.iter (fun g -> Obs.set_gauge g (Hashtbl.length t.table)) t.obs_entries
    end)

let find_or_add t key compute =
  match find_opt t key with
  | Some v -> v
  | None ->
    (* Computed outside the lock: a concurrent miss on the same key just
       recomputes the same deterministic value. *)
    let v = compute () in
    add t key v;
    v

let hits t = with_lock t (fun () -> t.hits)
let misses t = with_lock t (fun () -> t.misses)

let clear t =
  with_lock t (fun () ->
    Hashtbl.reset t.table;
    t.hits <- 0;
    t.misses <- 0;
    Option.iter (fun g -> Obs.set_gauge g 0) t.obs_entries)

let string_of_mode = function Spec.Read -> "r" | Spec.Write -> "w" | Spec.Update -> "u"

let key_of_spec (spec : Spec.t) =
  let buf = Buffer.create 96 in
  Buffer.add_string buf "L=";
  Array.iteri
    (fun i l ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (string_of_int l))
    spec.Spec.bounds;
  let rows =
    Array.to_list spec.Spec.arrays
    |> List.map (fun (a : Spec.array_ref) ->
         Printf.sprintf "%s:%s" (string_of_mode a.Spec.mode)
           (String.concat "," (List.map string_of_int (Array.to_list a.Spec.support))))
    |> List.sort String.compare
  in
  Buffer.add_string buf ";A=";
  Buffer.add_string buf (String.concat "|" rows);
  Buffer.contents buf

let key_of_shape = Tiling_plan.shape_key

let key_of_basis base_key ~k = Printf.sprintf "%s;k=%d" base_key k

let key_of_spec_beta spec ~beta =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (key_of_spec spec);
  Buffer.add_string buf ";b=";
  Array.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Rat.to_string r))
    beta;
  Buffer.contents buf
