(* Sharded by key hash: serve runs many connections' requests on many
   domains against the same tables, and one global mutex per table was
   the next lock in line. Shard count is a power of two so selection is
   a mask, and each shard has its own mutex; hit/miss/entry counts move
   to atomics so the hot path never takes a lock it doesn't need for
   the table itself. *)

type 'a shard = { lock : Mutex.t; table : (string, 'a) Hashtbl.t }

type 'a t = {
  shards : 'a shard array;
  mask : int;
  hits : int Atomic.t;
  misses : int Atomic.t;
  entries : int Atomic.t;
  obs_hits : Obs.counter option;
  obs_misses : Obs.counter option;
  obs_entries : Obs.gauge option;
}

let default_shards = 16

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

let create ?(shards = default_shards) ?name () =
  let n = pow2_at_least (max 1 shards) 1 in
  {
    shards =
      Array.init n (fun _ -> { lock = Mutex.create (); table = Hashtbl.create 16 });
    mask = n - 1;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    entries = Atomic.make 0;
    obs_hits = Option.map (fun n -> Obs.counter ("memo." ^ n ^ ".hits")) name;
    obs_misses = Option.map (fun n -> Obs.counter ("memo." ^ n ^ ".misses")) name;
    obs_entries = Option.map (fun n -> Obs.gauge ("memo." ^ n ^ ".entries")) name;
  }

let shard_of t key = t.shards.(Hashtbl.hash key land t.mask)

let with_lock s f =
  Mutex.lock s.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.lock) f

let count_entry t delta =
  let v = Atomic.fetch_and_add t.entries delta + delta in
  Option.iter (fun g -> Obs.set_gauge g v) t.obs_entries

let find_opt t key =
  let s = shard_of t key in
  let r = with_lock s (fun () -> Hashtbl.find_opt s.table key) in
  (match r with
  | Some _ ->
    Atomic.incr t.hits;
    Option.iter (fun c -> Obs.incr c) t.obs_hits
  | None ->
    Atomic.incr t.misses;
    Option.iter (fun c -> Obs.incr c) t.obs_misses);
  r

let add t key v =
  let s = shard_of t key in
  let added =
    with_lock s (fun () ->
      if Hashtbl.mem s.table key then false
      else begin
        Hashtbl.add s.table key v;
        true
      end)
  in
  if added then count_entry t 1

let replace t key v =
  let s = shard_of t key in
  let added =
    with_lock s (fun () ->
      let fresh = not (Hashtbl.mem s.table key) in
      Hashtbl.replace s.table key v;
      fresh)
  in
  if added then count_entry t 1

let find_or_add t key compute =
  match find_opt t key with
  | Some v -> v
  | None ->
    (* Computed outside the lock: a concurrent miss on the same key just
       recomputes the same deterministic value, and first writer wins. *)
    let v = compute () in
    add t key v;
    v

let hits t = Atomic.get t.hits
let misses t = Atomic.get t.misses
let length t = Atomic.get t.entries

let clear t =
  Array.iter (fun s -> with_lock s (fun () -> Hashtbl.reset s.table)) t.shards;
  Atomic.set t.hits 0;
  Atomic.set t.misses 0;
  Atomic.set t.entries 0;
  Option.iter (fun g -> Obs.set_gauge g 0) t.obs_entries

let to_alist t =
  let all =
    Array.fold_left
      (fun acc s ->
        with_lock s (fun () -> Hashtbl.fold (fun k v l -> (k, v) :: l) s.table acc))
      [] t.shards
  in
  List.sort (fun (k1, _) (k2, _) -> String.compare k1 k2) all

let string_of_mode = function Spec.Read -> "r" | Spec.Write -> "w" | Spec.Update -> "u"

let key_of_spec (spec : Spec.t) =
  let buf = Buffer.create 96 in
  Buffer.add_string buf "L=";
  Array.iteri
    (fun i l ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (string_of_int l))
    spec.Spec.bounds;
  let rows =
    Array.to_list spec.Spec.arrays
    |> List.map (fun (a : Spec.array_ref) ->
         Printf.sprintf "%s:%s" (string_of_mode a.Spec.mode)
           (String.concat "," (List.map string_of_int (Array.to_list a.Spec.support))))
    |> List.sort String.compare
  in
  Buffer.add_string buf ";A=";
  Buffer.add_string buf (String.concat "|" rows);
  Buffer.contents buf

let key_of_shape = Tiling_plan.shape_key

let key_of_basis base_key ~k = Printf.sprintf "%s;k=%d" base_key k

let key_of_spec_beta spec ~beta =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (key_of_spec spec);
  Buffer.add_string buf ";b=";
  Array.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Rat.to_string r))
    beta;
  Buffer.contents buf
