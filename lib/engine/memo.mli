(** Memo cache for LP/analysis results, keyed by canonicalized specs.

    Solving the tiling LP and the dual lower-bound LP with exact rational
    arithmetic dominates analysis cost; sweeps re-solve the same
    [(spec, beta)] point once per schedule/policy combination and CLI
    invocations re-solve it from scratch. Caching behind a canonical key
    makes repeats free.

    The canonical key of a spec ignores loop and array {e names} and the
    order in which arrays are listed: two programs with the same loop
    bounds and the same multiset of (support, mode) rows analyze
    identically, so they share cache entries.

    Tables are domain-safe and sharded: keys hash onto a power-of-two
    array of shards, each with its own mutex, so concurrent lookups of
    different keys rarely contend (the serve daemon runs many
    connections' requests against these tables at once). Hit/miss/entry
    counts are atomics outside the shard locks. Computations still run
    outside any lock (a racing duplicate compute of the same
    deterministic value is harmless and cheaper than holding a lock
    across an LP solve; first writer wins). *)

type 'a t

val create : ?shards:int -> ?name:string -> unit -> 'a t
(** [shards] (default 16) is rounded up to a power of two; 1 gives the
    old single-lock behavior. A named table additionally mirrors its hit/miss counts into the
    global {!Obs} counters [memo.<name>.hits] / [memo.<name>.misses] and
    its live entry count into the gauge [memo.<name>.entries], so
    snapshots show per-cache effectiveness and footprint. {!clear}
    resets the per-table counters and zeroes the entries gauge; the
    hit/miss mirrors are monotonic and reset with {!Obs.reset}. *)

val find_or_add : 'a t -> string -> (unit -> 'a) -> 'a
(** [find_or_add t key compute] returns the cached value for [key],
    computing and caching it on first use. *)

val find_opt : 'a t -> string -> 'a option
(** Lookup only; counts a hit or a miss. *)

val add : 'a t -> string -> 'a -> unit
(** Insert if absent (first writer wins). *)

val replace : 'a t -> string -> 'a -> unit
(** Insert or overwrite (last writer wins) — for caches whose entries
    improve over time, like the warm-start simplex bases where the most
    recently certified basis is the best predictor for the next solve of
    that shape. *)

val hits : 'a t -> int
val misses : 'a t -> int

val length : 'a t -> int
(** Live entries across all shards. *)

val to_alist : 'a t -> (string * 'a) list
(** Every entry, sorted by key — the deterministic order makes cache
    snapshots byte-stable. Locks each shard in turn (the result is a
    consistent view of each shard, not of the whole table). *)

val clear : 'a t -> unit
(** Drop all entries and reset the hit/miss counters (for tests). *)

val key_of_spec : Spec.t -> string
(** Canonical rendering of bounds + sorted (support, mode) rows; loop and
    array names do not appear. *)

val key_of_shape : Spec.t -> string
(** {!key_of_spec} without the bounds prefix ({!Tiling_plan.shape_key}):
    the key of the kernel's {e shape} alone. Everything the tiling plan
    serves depends only on this, so plans for [matmul] at 512-cubed and
    4096-cubed are one cache entry. *)

val key_of_spec_beta : Spec.t -> beta:Rat.t array -> string
(** {!key_of_spec} extended with the exact rational [beta] vector. *)

val key_of_basis : string -> k:int -> string
(** [key_of_basis base ~k] — key for the memoized optimal simplex basis
    of the [k]-th lexmax sub-solve of the problem keyed by [base]
    (normally a {!key_of_spec_beta}). Backs {!Tiling.basis_hooks}: a hit
    replaces a simplex solve with a single exact certification. *)
