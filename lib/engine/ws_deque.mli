(** A Chase–Lev work-stealing deque.

    One domain — the {e owner} — pushes and pops at the bottom with
    plain loads/stores (lock-free, no CAS on the common path); any other
    domain {e steals} from the top with a single compare-and-swap. The
    owner therefore runs its own work in LIFO order (cache-warm, the
    continuation it just created) while thieves drain the oldest tasks
    FIFO — the classic split that makes stealing cheap and rare.

    This is the dynamic-circular-work-stealing-deque of Chase & Lev
    (SPAA 2005) on OCaml 5 [Atomic]s: [top] only ever grows (so the
    steal CAS cannot ABA), [bottom] is written by the owner alone, and
    the buffer grows by publishing a fresh array atomically — thieves
    holding the old array still read valid slots for any index they can
    win the CAS on.

    Safety contract: exactly one domain may call {!push}/{!pop} on a
    given deque; any number of domains may call {!steal}. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Owner only: add at the bottom. Amortized O(1); grows the buffer
    (doubling) when full. *)

val pop : 'a t -> 'a option
(** Owner only: take the most recently pushed element, or [None] when
    empty. When exactly one element remains the owner races thieves for
    it with the same CAS they use. *)

type 'a steal_result =
  | Stolen of 'a
  | Empty
  | Retry  (** lost a race with the owner or another thief *)

val steal : 'a t -> 'a steal_result
(** Thief: take the oldest element. [Retry] means the CAS failed —
    someone else got there first; the element count is unknown, so
    callers typically re-scan their victim list. *)

val size : 'a t -> int
(** Approximate occupancy (racy reads of both ends; never negative).
    For monitoring only. *)
