(** Facade over the unified analysis pipeline.

    [Engine] is what the CLI, the benchmark harness and the examples
    compile against: one-call helpers wrapping {!Pipeline} (typed
    requests, memoized LP/analysis stages, domain-parallel sweeps) and
    {!Report} (text/JSON rendering). See those modules for the knobs. *)

type report = Report.t
type sim = Report.sim
type schedule_choice = Pipeline.schedule_choice =
  | Optimal
  | Classic
  | Untiled
  | Permuted of int array
  | Fixed of int array

val analyze :
  ?sims:Pipeline.sim_request list -> ?shared:bool -> Spec.t -> m:int -> report
(** Full pipeline for one kernel at one cache size.
    @raise Engine_error.Error on an invalid request — this is the thin
    raising wrapper over {!analyze_checked}; prefer the checked variant
    in code that must not die. *)

val analyze_checked :
  ?sims:Pipeline.sim_request list ->
  ?shared:bool ->
  ?deadline:float ->
  Spec.t ->
  m:int ->
  (report, Engine_error.t) result
(** Non-raising {!analyze} with an optional absolute deadline; see
    {!Pipeline.run_checked} for validation and deadline semantics. *)

val run_checked :
  ?deadline:float -> Pipeline.request -> (report, Engine_error.t) result
(** Re-export of {!Pipeline.run_checked}. *)

val sweep : ?jobs:int -> Pipeline.request list -> report list
(** Parallel sweep over independent requests; deterministic order.
    @raise Engine_error.Error on the first failing request. *)

val sweep_checked :
  ?jobs:int -> ?coarse:bool -> ?deadline:float -> Pipeline.request list ->
  (report, Engine_error.t) result list
(** Re-export of {!Pipeline.sweep_checked}: per-request results in input
    order, one bad request never poisons the batch; analytic requests
    are scheduled ahead of simulation tails ([~coarse:true] restores
    the class-blind pre-split scheduler for A/B measurement). *)

val partition_checked :
  ?deadline:float ->
  ?budget:int ->
  Spec.t ->
  p:int ->
  m_local:int ->
  net:Partition_solve.network ->
  (Partition_solve.solution, Engine_error.t) result
(** Re-export of {!Pipeline.partition_checked}: the distributed-memory
    partition solver as a checked request. *)

val partition_validate :
  ?jobs:int ->
  Spec.t ->
  Partition_solve.solution ->
  (Pipeline.partition_validation, Engine_error.t) result
(** Re-export of {!Pipeline.partition_validate}: Pool-simulate the
    P-processor schedule (one domain per block-shape group) and check
    the modeled words exactly. *)

val sweep_grid :
  ?jobs:int ->
  ?sims:Pipeline.sim_request list ->
  ?shared:bool ->
  Spec.t list ->
  ms:int list ->
  report list
(** Cartesian product of kernels and cache sizes, kernels outermost. *)

val simulate :
  ?policy:Policy.t -> ?line_words:int -> Spec.t -> m:int -> schedule_choice -> sim
(** One simulation, with the schedule resolved by the engine (memoized
    tiles). *)

val words_moved :
  ?policy:Policy.t -> ?line_words:int -> Spec.t -> m:int -> schedule_choice -> int
(** [words_moved] of {!simulate} — the one-number version used all over
    the benchmark tables. *)

val lower_bound : Spec.t -> m:int -> Lower_bound.bound
val solve_lp : Spec.t -> beta:Rat.t array -> Tiling.lp_solution
val tile : Spec.t -> m:int -> int array
val tile_shared : Spec.t -> m:int -> int array

val hierarchy :
  ?policy:Policy.t -> Spec.t -> capacities:int array -> Pipeline.hierarchy_report

val cache_stats : unit -> int * int
val reset_caches : unit -> unit

val cache_snapshot : unit -> string
val cache_restore : string -> (int * int, string) result
(** Re-exports of the {!Pipeline} cache persistence layer (see
    {!Cache_store} for the file-backed form). *)

(** {1 Tiling plans}

    Re-exports of the {!Pipeline} plan layer: per-shape compiled answer
    tables that remove simplex solves from repeat-shape workloads. *)

type plan_mode = Pipeline.plan_mode = Plan_off | Plan_inline | Plan_deferred

val set_plan_mode : plan_mode -> unit
val plan_mode : unit -> plan_mode
val plan_of : Spec.t -> (Tiling_plan.t, Engine_error.t) result
val install_plan : Tiling_plan.t -> unit
val compile_pending : ?jobs:int -> unit -> int
