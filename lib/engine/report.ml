type sim = {
  label : string;
  schedule : Schedules.t;
  policy : Policy.t;
  line_words : int;
  stats : Cache.stats;
  words_moved : int;
  ratio : float;
}

type t = {
  spec : Spec.t;
  m : int;
  beta : Rat.t array;
  bound : Lower_bound.bound;
  lp : Tiling.lp_solution;
  tile : int array;
  tile_shared : int array option;
  tile_volume : int;
  tile_max_footprint : int;
  tiles : int;
  traffic : Tiling.traffic;
  attainment : float;
  sims : sim list;
  timings : (string * float) list;
  from_cache : bool;
}

let pp_sim ~bound ~m fmt s =
  Format.fprintf fmt
    "@[<v>schedule: %s   policy: %s   cache: %d words@,\
     accesses %d   hits %d   misses %d   writebacks %d@,\
     words moved: %d   lower bound: %.0f   ratio: %.3f@]"
    s.label (Policy.to_string s.policy) m s.stats.Cache.accesses s.stats.Cache.hits
    s.stats.Cache.misses s.stats.Cache.writebacks s.words_moved bound.Lower_bound.words
    s.ratio

let pp fmt r =
  Format.fprintf fmt
    "@[<v>%a@,%a@,tile = %a  (volume %d, max footprint %d / M = %d, %d tiles)@,\
     tiled schedule traffic: %.4g reads + %.4g writes@,\
     attainment (traffic / lower bound) = %.3f@]"
    Spec.pp r.spec Lower_bound.pp_bound r.bound (Tiling.pp r.spec) r.tile r.tile_volume
    r.tile_max_footprint r.m r.tiles r.traffic.Tiling.reads r.traffic.Tiling.writes
    r.attainment;
  (match r.tile_shared with
  | Some t ->
    Format.fprintf fmt "@.tile (shared cache of M words): %a  volume %d" (Tiling.pp r.spec) t
      (Tiling.volume t)
  | None -> ());
  List.iter (fun s -> Format.fprintf fmt "@.%a" (pp_sim ~bound:r.bound ~m:r.m) s) r.sims

(* ------------------------------------------------------------------ *)
(* JSON                                                               *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let jstr s = Printf.sprintf "\"%s\"" (json_escape s)

let jfloat f =
  if Float.is_nan f then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let jarr items = "[" ^ String.concat "," items ^ "]"
let jobj fields = "{" ^ String.concat "," (List.map (fun (k, v) -> jstr k ^ ":" ^ v) fields) ^ "}"
let jints a = jarr (List.map string_of_int (Array.to_list a))
let jrats a = jarr (List.map (fun r -> jstr (Rat.to_string r)) (Array.to_list a))

let json_of_sim s =
  jobj
    [
      ("schedule", jstr s.label);
      ("policy", jstr (Policy.to_string s.policy));
      ("line_words", string_of_int s.line_words);
      ("accesses", string_of_int s.stats.Cache.accesses);
      ("hits", string_of_int s.stats.Cache.hits);
      ("misses", string_of_int s.stats.Cache.misses);
      ("writebacks", string_of_int s.stats.Cache.writebacks);
      ("words_moved", string_of_int s.words_moved);
      ("ratio", jfloat s.ratio);
    ]

let to_json ?(timings = true) r =
  let b = r.bound in
  let base =
    [
      ("kernel", jstr r.spec.Spec.name);
      ("loops", jarr (List.map jstr (Array.to_list r.spec.Spec.loops)));
      ("bounds", jints r.spec.Spec.bounds);
      ("m", string_of_int r.m);
      ("beta", jrats r.beta);
      ("k_hat", jstr (Rat.to_string b.Lower_bound.exponent.Lower_bound.k_hat));
      ( "witness_q",
        jarr (List.map string_of_int b.Lower_bound.exponent.Lower_bound.witness_q) );
      ("lower_bound_words", jfloat b.Lower_bound.words);
      ("lower_bound_words_paper", jfloat b.Lower_bound.words_paper);
      ("lower_bound_words_classic", jfloat b.Lower_bound.words_classic);
      ("lp_value", jstr (Rat.to_string r.lp.Tiling.value));
      ("lambda", jrats r.lp.Tiling.lambda);
      ("tile", jints r.tile);
      ( "tile_shared",
        match r.tile_shared with None -> "null" | Some t -> jints t );
      ("tile_volume", string_of_int r.tile_volume);
      ("tile_max_footprint", string_of_int r.tile_max_footprint);
      ("tiles", string_of_int r.tiles);
      ("analytic_reads", jfloat r.traffic.Tiling.reads);
      ("analytic_writes", jfloat r.traffic.Tiling.writes);
      ("attainment", jfloat r.attainment);
      ("simulations", jarr (List.map json_of_sim r.sims));
    ]
  in
  let extra =
    if timings then
      [
        ( "timings",
          jobj (List.map (fun (stage, s) -> (stage, jfloat s)) r.timings) );
        ("from_cache", if r.from_cache then "true" else "false");
      ]
    else []
  in
  jobj (base @ extra)

let json_of_reports ?timings rs =
  jarr (List.map (to_json ?timings) rs)

let schema_version = 1

let json_of_sweep ?timings ?obs rs =
  let fields = [ ("v", string_of_int schema_version); ("reports", json_of_reports ?timings rs) ] in
  jobj (match obs with None -> fields | Some obs -> fields @ [ ("obs", obs) ])
