(* Chase–Lev dynamic circular work-stealing deque (SPAA 2005), in the
   formulation of Lê, Pop, Cohen & Zappa Nardelli (PPoPP 2013) whose
   fence placement maps directly onto OCaml 5 [Atomic] (every Atomic op
   is seq_cst, which over-synchronizes relative to the paper's acq/rel
   but can only be more correct).

   Invariants:
     - [top] is monotonically non-decreasing and only advanced by CAS,
       so a successful steal CAS can never be an ABA victim.
     - [bottom] is written only by the owner.
     - live elements occupy indices [top, bottom) of the current buffer,
       addressed modulo its (power-of-two) size.
     - growth publishes a brand-new {buf; mask} record via [Atomic.set];
       a thief still holding the old record reads stale but valid values
       for any index it can win the top-CAS on, because the owner never
       overwrites a live slot in place (a full buffer grows instead of
       wrapping onto index [top]). *)

type 'a buffer = { arr : 'a option array; mask : int }

type 'a t = {
  top : int Atomic.t;
  bottom : int Atomic.t;
  buf : 'a buffer Atomic.t;
}

let create () =
  {
    top = Atomic.make 0;
    bottom = Atomic.make 0;
    buf = Atomic.make { arr = Array.make 16 None; mask = 15 };
  }

(* Owner only, called with the buffer full: copy the live window into a
   buffer twice the size and publish it. Thieves that already loaded the
   old buffer keep reading it — every index they can still win belongs
   to the old live window, which we never mutate. *)
let grow t ~top ~bottom =
  let old = Atomic.get t.buf in
  let size = (old.mask + 1) * 2 in
  let arr = Array.make size None in
  for i = top to bottom - 1 do
    arr.(i land (size - 1)) <- old.arr.(i land old.mask)
  done;
  Atomic.set t.buf { arr; mask = size - 1 }

let push t x =
  let b = Atomic.get t.bottom in
  let tp = Atomic.get t.top in
  let buf = Atomic.get t.buf in
  let buf =
    if b - tp > buf.mask then begin
      grow t ~top:tp ~bottom:b;
      Atomic.get t.buf
    end
    else buf
  in
  buf.arr.(b land buf.mask) <- Some x;
  Atomic.set t.bottom (b + 1)

let pop t =
  let b = Atomic.get t.bottom - 1 in
  (* Publish the lowered bottom before reading top: after this store a
     thief can only reach indices < b, so when top < b the element at b
     is exclusively ours, no CAS needed. *)
  Atomic.set t.bottom b;
  let tp = Atomic.get t.top in
  if b < tp then begin
    (* Already empty; restore the canonical empty state. *)
    Atomic.set t.bottom tp;
    None
  end
  else begin
    let buf = Atomic.get t.buf in
    let x = buf.arr.(b land buf.mask) in
    if b > tp then begin
      (* More than one element: b is unreachable by thieves (see above),
         take it and drop the reference so the value can be collected. *)
      buf.arr.(b land buf.mask) <- None;
      x
    end
    else begin
      (* Exactly one element: race the thieves for it with their CAS. *)
      let won = Atomic.compare_and_set t.top tp (tp + 1) in
      Atomic.set t.bottom (tp + 1);
      if won then x else None
    end
  end

type 'a steal_result = Stolen of 'a | Empty | Retry

let steal t =
  let tp = Atomic.get t.top in
  let b = Atomic.get t.bottom in
  if b - tp <= 0 then Empty
  else begin
    let buf = Atomic.get t.buf in
    match buf.arr.(tp land buf.mask) with
    | None ->
      (* The slot emptied between our reads (owner popped it); the CAS
         would fail anyway. *)
      Retry
    | Some x -> if Atomic.compare_and_set t.top tp (tp + 1) then Stolen x else Retry
  end

let size t =
  let tp = Atomic.get t.top in
  let b = Atomic.get t.bottom in
  max 0 (b - tp)
